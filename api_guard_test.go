package wivi_test

// The public-API guard: the exported surface of package wivi is pinned
// to testdata/api.txt. An unintentional export, removal or rename fails
// this test; a deliberate API change is recorded with
//
//	go test -run TestPublicAPISurface -update .
//
// and reviewed as part of the diff.

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update", false, "rewrite testdata/api.txt with the current exported surface")

// exportedSurface parses the package's non-test files and lists every
// exported identifier: consts, vars, funcs, types, methods on exported
// types, struct fields and interface methods.
func exportedSurface(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["wivi"]
	if !ok {
		t.Fatalf("package wivi not found (got %v)", pkgs)
	}
	var out []string
	add := func(format string, args ...any) { out = append(out, fmt.Sprintf(format, args...)) }
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv == nil {
					add("func %s", d.Name.Name)
					continue
				}
				recv := receiverName(d.Recv.List[0].Type)
				if recv == "" || !ast.IsExported(recv) {
					continue
				}
				add("method %s.%s", recv, d.Name.Name)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.ValueSpec:
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						for _, name := range s.Names {
							if name.IsExported() {
								add("%s %s", kind, name.Name)
							}
						}
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						add("type %s", s.Name.Name)
						switch tt := s.Type.(type) {
						case *ast.StructType:
							for _, f := range tt.Fields.List {
								for _, name := range f.Names {
									if name.IsExported() {
										add("field %s.%s", s.Name.Name, name.Name)
									}
								}
							}
						case *ast.InterfaceType:
							for _, m := range tt.Methods.List {
								for _, name := range m.Names {
									if name.IsExported() {
										add("method %s.%s (interface)", s.Name.Name, name.Name)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

func receiverName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return receiverName(e.X)
	case *ast.IndexExpr: // generic receiver
		return receiverName(e.X)
	}
	return ""
}

// TestPublicAPISurface asserts the exported surface matches the golden
// list — the contract the Engine redesign commits the package to.
func TestPublicAPISurface(t *testing.T) {
	got := exportedSurface(t)
	golden := filepath.Join("testdata", "api.txt")
	if *updateAPI {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d identifiers)", golden, len(got))
		return
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestPublicAPISurface -update .` to create it)", err)
	}
	want := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	gotSet := make(map[string]bool, len(got))
	for _, id := range got {
		gotSet[id] = true
	}
	wantSet := make(map[string]bool, len(want))
	for _, id := range want {
		wantSet[id] = true
	}
	var missing, extra []string
	for _, id := range want {
		if !gotSet[id] {
			missing = append(missing, id)
		}
	}
	for _, id := range got {
		if !wantSet[id] {
			extra = append(extra, id)
		}
	}
	if len(missing) > 0 || len(extra) > 0 {
		t.Errorf("exported API surface drifted from testdata/api.txt")
		for _, id := range missing {
			t.Errorf("  removed: %s", id)
		}
		for _, id := range extra {
			t.Errorf("  added:   %s", id)
		}
		t.Errorf("if intentional, run `go test -run TestPublicAPISurface -update .` and review the diff")
	}
}
