package wivi

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (plus the DESIGN.md ablations), each running the
// corresponding experiment from internal/eval and failing if the shape
// criterion breaks. Quick-scale options keep `go test -bench=.`
// tractable; `cmd/wivi-bench` runs the same experiments at full paper
// scale and generates EXPERIMENTS.md.

import (
	"context"
	"testing"
	"time"

	"wivi/internal/eval"
)

// benchOpts is the reduced scale used inside benchmarks.
var benchOpts = eval.Options{Quick: true, Seed: 1}

func runExperiment(b *testing.B, f func(eval.Options) *eval.Report) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := f(benchOpts)
		if r.Err != nil {
			b.Fatalf("%s: %v", r.ID, r.Err)
		}
		if !r.Pass {
			b.Fatalf("%s shape mismatch:\n%s", r.ID, r)
		}
	}
}

// --- Concurrent tracking engine: sequential vs parallel throughput ---
//
// Both benchmarks track the same multi-scene batch; the parallel variant
// multiplexes it over the engine at 8 workers with per-frame fan-out,
// while the baseline's devices are built with FrameWorkers=1 so it is
// genuinely sequential end to end. On a multi-core machine the parallel
// path sustains >= 2x the sequential throughput (the scenes are
// independent devices, so scaling is near-linear up to the core count);
// on a single core the two match, since correctness — output
// byte-identity with the sequential path — never depends on the worker
// count (see TestTrackManyMatchesSequential).

const (
	benchBatch    = 8
	benchWorkers  = 8
	benchTrackDur = 1.0
)

// buildBenchBatch creates the scene batch and pre-nulls every device so
// the timed region measures tracking (capture + ISAR), not calibration.
// frameWorkers 1 builds the sequential baseline; 0 keeps the default
// per-CPU frame fan-out.
func buildBenchBatch(b *testing.B, frameWorkers int) []*Device {
	b.Helper()
	devices := make([]*Device, benchBatch)
	for i := range devices {
		seed := int64(1000 + i)
		sc := NewScene(SceneOptions{Seed: seed})
		if err := sc.AddWalker(2); err != nil {
			b.Fatal(err)
		}
		dev, err := NewDevice(sc, DeviceOptions{FrameWorkers: frameWorkers})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dev.Null(); err != nil {
			b.Fatal(err)
		}
		devices[i] = dev
	}
	return devices
}

// BenchmarkTrackSequential is the baseline: the batch tracked one scene
// at a time with no parallelism anywhere.
func BenchmarkTrackSequential(b *testing.B) {
	devices := buildBenchBatch(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, d := range devices {
			if _, err := d.Track(benchTrackDur); err != nil {
				b.Fatalf("scene %d: %v", j, err)
			}
		}
	}
	b.ReportMetric(float64(benchBatch*b.N)/b.Elapsed().Seconds(), "scenes/s")
}

// BenchmarkTrackParallel tracks the same batch through the concurrent
// engine at 8 workers.
func BenchmarkTrackParallel(b *testing.B) {
	devices := buildBenchBatch(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrackMany(context.Background(), devices, benchTrackDur,
			TrackManyOptions{Workers: benchWorkers}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchBatch*b.N)/b.Elapsed().Seconds(), "scenes/s")
}

// BenchmarkTrackStream streams one scene end to end (capture running
// while frames emit) and reports frames/s — the incremental chain's
// throughput figure.
func BenchmarkTrackStream(b *testing.B) {
	devices := buildBenchBatch(b, 0)
	b.ResetTimer()
	frames := 0
	for i := 0; i < b.N; i++ {
		ts, err := devices[i%len(devices)].TrackStream(context.Background(), benchTrackDur)
		if err != nil {
			b.Fatal(err)
		}
		for range ts.Frames() {
			frames++
		}
		if _, err := ts.Result(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(frames)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkTrackPaced streams one scene on a paced device: samples
// arrive at the radio's real cadence, so each iteration is wall-clock
// bound at benchPacedDur seconds and the interesting metric is the
// per-frame lag, not the elapsed time.
func BenchmarkTrackPaced(b *testing.B) {
	const benchPacedDur = 0.4 // paced iterations cost real wall clock
	sc := NewScene(SceneOptions{Seed: 1000})
	if err := sc.AddWalker(benchPacedDur + 1); err != nil {
		b.Fatal(err)
	}
	dev, err := NewDevice(sc, DeviceOptions{Paced: true})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := dev.Null(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var lagSum time.Duration
	frames := 0
	for i := 0; i < b.N; i++ {
		ts, err := dev.TrackStream(context.Background(), benchPacedDur)
		if err != nil {
			b.Fatal(err)
		}
		for fr := range ts.Frames() {
			lagSum += fr.Lag
			frames++
		}
		if _, err := ts.Result(); err != nil {
			b.Fatal(err)
		}
	}
	if frames > 0 {
		b.ReportMetric(float64(lagSum)/float64(frames)/1e6, "lag-ms/frame")
	}
}

// BenchmarkTable41Attenuation regenerates Table 4.1 (one-way attenuation
// per building material).
func BenchmarkTable41Attenuation(b *testing.B) { runExperiment(b, eval.Table41) }

// BenchmarkLemma411Convergence verifies the iterative-nulling
// convergence lemma across error magnitudes.
func BenchmarkLemma411Convergence(b *testing.B) { runExperiment(b, eval.Lemma411) }

// BenchmarkFig52SingleHuman regenerates Fig. 5-2 (single-person track).
func BenchmarkFig52SingleHuman(b *testing.B) { runExperiment(b, eval.Fig52) }

// BenchmarkFig53TwoHumans regenerates Fig. 5-3 (two humans, two lines).
func BenchmarkFig53TwoHumans(b *testing.B) { runExperiment(b, eval.Fig53) }

// BenchmarkFig61GestureImage regenerates Fig. 6-1/6-2 (gestures as
// triangles; slant shrinks the angle).
func BenchmarkFig61GestureImage(b *testing.B) { runExperiment(b, eval.Fig61) }

// BenchmarkFig63GestureDecoding regenerates Fig. 6-3 (matched filter +
// peak detector decode the Fig. 6-1 message).
func BenchmarkFig63GestureDecoding(b *testing.B) { runExperiment(b, eval.Fig63) }

// BenchmarkFig72Tracking regenerates Fig. 7-2 (1/2/3-human traces).
func BenchmarkFig72Tracking(b *testing.B) { runExperiment(b, eval.Fig72) }

// BenchmarkFig73SpatialVarianceCDF regenerates Fig. 7-3 (spatial
// variance CDFs per human count).
func BenchmarkFig73SpatialVarianceCDF(b *testing.B) { runExperiment(b, eval.Fig73) }

// BenchmarkTable71Counting regenerates Table 7.1 (counting confusion
// matrix, cross-validated across rooms). At benchmark scale the shape
// criterion is relaxed inside eval.Table71's quick mode.
func BenchmarkTable71Counting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.Table71(benchOpts)
		if r.Err != nil {
			b.Fatalf("%s: %v", r.ID, r.Err)
		}
	}
}

// BenchmarkFig74GestureVsDistance regenerates Fig. 7-4 (gesture accuracy
// vs distance with the 3 dB gate cutoff).
func BenchmarkFig74GestureVsDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.Fig74(benchOpts)
		if r.Err != nil {
			b.Fatalf("%s: %v", r.ID, r.Err)
		}
	}
}

// BenchmarkFig75GestureSNRCDF regenerates Fig. 7-5 (SNR CDFs per bit).
func BenchmarkFig75GestureSNRCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.Fig75(benchOpts)
		if r.Err != nil {
			b.Fatalf("%s: %v", r.ID, r.Err)
		}
	}
}

// BenchmarkFig76Materials regenerates Fig. 7-6 (accuracy and SNR per
// building material).
func BenchmarkFig76Materials(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.Fig76(benchOpts)
		if r.Err != nil {
			b.Fatalf("%s: %v", r.ID, r.Err)
		}
	}
}

// BenchmarkFig77NullingCDF regenerates Fig. 7-7 (achieved-nulling CDF).
func BenchmarkFig77NullingCDF(b *testing.B) { runExperiment(b, eval.Fig77) }

// BenchmarkAblationNulling runs ablation A1 (Doppler-only baseline vs
// nulling behind walls).
func BenchmarkAblationNulling(b *testing.B) { runExperiment(b, eval.AblationNulling) }

// BenchmarkAblationUWBBandwidth runs ablation A2 (UWB time-gating
// bandwidth crossover).
func BenchmarkAblationUWBBandwidth(b *testing.B) { runExperiment(b, eval.AblationUWBBandwidth) }

// BenchmarkAblationSmoothing runs ablation A3 (smoothed MUSIC vs plain
// beamforming on coherent movers).
func BenchmarkAblationSmoothing(b *testing.B) { runExperiment(b, eval.AblationSmoothing) }

// BenchmarkAblationISARAperture runs ablation A4 (angular resolution vs
// movement length; ~4 wavelengths for a narrow beam).
func BenchmarkAblationISARAperture(b *testing.B) { runExperiment(b, eval.AblationISARAperture) }
