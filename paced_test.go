package wivi

// Public-API tests of the real-time pacing subsystem: a paced device's
// streamed output stays byte-identical to an unpaced batch Track, its
// capture really spans wall clock, frame Lag values are populated, and
// deadline admission rejects provably-late requests with the typed
// sentinel.

import (
	"context"
	"errors"
	"testing"
	"time"
)

// newPacedTestScene builds identical walker scenes for the paced and
// unpaced devices (same seed -> bit-identical measurement streams).
func newPacedTestScene(t *testing.T, seed int64) *Scene {
	t.Helper()
	sc := NewScene(SceneOptions{Seed: seed})
	if err := sc.AddWalker(2); err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestPacedStreamMatchesBatchRealClock streams a short capture on a
// real-clock paced device and checks wall-clock pacing, identity with
// the unpaced batch path, and lag accounting. The capture is kept to
// 0.4 s so the test stays fast.
func TestPacedStreamMatchesBatchRealClock(t *testing.T) {
	const duration = 0.4
	bdev, err := NewDevice(newPacedTestScene(t, 31), DeviceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := bdev.Track(duration)
	if err != nil {
		t.Fatal(err)
	}

	pdev, err := NewDevice(newPacedTestScene(t, 31), DeviceOptions{Paced: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pdev.Null(); err != nil { // keep nulling out of the paced span
		t.Fatal(err)
	}
	start := time.Now()
	ts, err := pdev.TrackStream(context.Background(), duration)
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	for fr := range ts.Frames() {
		if fr.Lag < 0 {
			t.Fatalf("frame %d: negative lag %v", fr.Index, fr.Lag)
		}
		frames++
	}
	got, err := ts.Result()
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	if !got.Equal(want) {
		t.Fatal("paced streamed result differs from unpaced batch Track")
	}
	if frames != want.NumFrames() {
		t.Fatalf("streamed %d frames, batch has %d", frames, want.NumFrames())
	}
	// A paced capture cannot beat the radio: its samples span
	// duration seconds of wall clock. Allow a little scheduling slop
	// below, none of it anywhere near the 4x margin we assert.
	if min := time.Duration(0.9 * duration * float64(time.Second)); elapsed < min {
		t.Fatalf("paced stream finished in %v, impossible under %v pacing", elapsed, min)
	}
	if ts.WindowDuration() <= 0 {
		t.Fatalf("WindowDuration = %v", ts.WindowDuration())
	}
}

// TestRequestDeadlineInfeasible exercises the typed rejection: a paced
// device's capture is wall-clock floored at Duration, so a tighter
// Deadline must fail at Submit with ErrDeadlineInfeasible.
func TestRequestDeadlineInfeasible(t *testing.T) {
	pdev, err := NewDevice(newPacedTestScene(t, 33), DeviceOptions{Paced: true})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(EngineOptions{Workers: 2})
	defer eng.Close()

	for _, stream := range []bool{false, true} {
		_, err := eng.Submit(context.Background(), Request{
			Device:   pdev,
			Duration: 2,
			Stream:   stream,
			Deadline: 200 * time.Millisecond,
		})
		if !errors.Is(err, ErrDeadlineInfeasible) {
			t.Fatalf("stream=%v: Submit err = %v, want ErrDeadlineInfeasible", stream, err)
		}
	}
	// A feasible deadline on an unpaced device sails through.
	udev, err := NewDevice(newPacedTestScene(t, 33), DeviceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := eng.Submit(context.Background(), Request{Device: udev, Duration: 1, Deadline: time.Minute})
	if err != nil {
		t.Fatalf("feasible submit: %v", err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestEngineStatsLatencyProfiles checks that the engine's latency
// histograms populate for both batch and streaming traffic and expose
// monotone percentiles.
func TestEngineStatsLatencyProfiles(t *testing.T) {
	eng := NewEngine(EngineOptions{Workers: 2})
	defer eng.Close()
	ctx := context.Background()

	dev, err := NewDevice(newPacedTestScene(t, 35), DeviceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := eng.Submit(ctx, Request{Device: dev, Duration: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	sdev, err := NewDevice(newPacedTestScene(t, 36), DeviceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := eng.Submit(ctx, Request{Device: sdev, Duration: 1, Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	// Stream latency counters settle within a scheduling beat of Done.
	deadline := time.Now().Add(2 * time.Second)
	var st EngineStats
	for {
		st = eng.Stats()
		if st.FrameLag.Count > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if st.QueueWait.Count < 2 {
		t.Fatalf("QueueWait.Count = %d, want >= 2", st.QueueWait.Count)
	}
	if st.EndToEnd.Count < 2 {
		t.Fatalf("EndToEnd.Count = %d, want >= 2", st.EndToEnd.Count)
	}
	if st.FrameLag.Count == 0 {
		t.Fatal("FrameLag.Count = 0 after a completed stream")
	}
	for _, p := range []LatencyProfile{st.QueueWait, st.FrameLag, st.EndToEnd} {
		if p.P50 > p.P95 || p.P95 > p.P99 {
			t.Fatalf("percentiles not monotone: %+v", p)
		}
	}
}
