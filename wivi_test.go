package wivi

import (
	"strings"
	"testing"
)

func TestMaterialTable(t *testing.T) {
	cases := map[Material]float64{
		FreeSpace:          0,
		TintedGlass:        3,
		SolidWoodDoor:      6,
		HollowWall:         9,
		Concrete18:         18,
		ReinforcedConcrete: 40,
	}
	for m, want := range cases {
		if got := m.OneWayAttenuationDB(); got != want {
			t.Errorf("%s attenuation = %v, want %v", m, got, want)
		}
		if m.String() == "" {
			t.Errorf("material %d has no name", m)
		}
	}
}

func TestSceneBuilders(t *testing.T) {
	s := NewScene(SceneOptions{Seed: 1})
	if s.NumSubjects() != 0 {
		t.Fatal("fresh scene has subjects")
	}
	if err := s.AddWalker(5); err != nil {
		t.Fatal(err)
	}
	if s.NumSubjects() != 1 {
		t.Fatal("walker not added")
	}
	dur, err := s.AddGestureSender(GestureMessage{Bits: []Bit{Bit0}, Distance: 4})
	if err != nil {
		t.Fatal(err)
	}
	if dur < 3 {
		t.Fatalf("message duration %v too short", dur)
	}
	if _, err := s.AddGestureSender(GestureMessage{Distance: 4}); err == nil {
		t.Fatal("empty message accepted")
	}
	if _, err := s.AddGestureSender(GestureMessage{Bits: []Bit{Bit0}}); err == nil {
		t.Fatal("zero distance accepted")
	}
}

func TestNewDeviceValidation(t *testing.T) {
	if _, err := NewDevice(nil, DeviceOptions{}); err == nil {
		t.Fatal("nil scene accepted")
	}
}

func TestNullSummary(t *testing.T) {
	s := NewScene(SceneOptions{Seed: 7})
	d, err := NewDevice(s, DeviceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := d.Null()
	if err != nil {
		t.Fatal(err)
	}
	// Single-scene nulling draws from the Fig. 7-7 distribution (median
	// ~40 dB, wide tails; this seed is a shallow noise-limited draw).
	// Broken nulling shows up as ~0 dB, far below the bound.
	if sum.AchievedDB < 12 || sum.AchievedDB > 70 {
		t.Fatalf("achieved nulling %v dB outside plausible range", sum.AchievedDB)
	}
}

func TestTrackWalkerEndToEnd(t *testing.T) {
	s := NewScene(SceneOptions{Seed: 11})
	if err := s.AddWalker(6); err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(s, DeviceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Track(4)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrames() < 20 {
		t.Fatalf("frames = %d", res.NumFrames())
	}
	if res.FrameTime(1) <= res.FrameTime(0) {
		t.Fatal("frame times not increasing")
	}
	// Some frame should show a non-DC line for a moving human.
	found := false
	for f := 0; f < res.NumFrames(); f++ {
		if len(res.AnglesAt(f, 2)) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no angle lines for a moving walker")
	}
	if res.SpatialVariance() <= 0 {
		t.Fatal("zero spatial variance with a walker present")
	}
	hm := res.Heatmap(40, 10)
	if !strings.Contains(hm, "|") || len(strings.Split(hm, "\n")) < 10 {
		t.Fatalf("heatmap malformed:\n%s", hm)
	}
}

func TestGestureMessageEndToEnd(t *testing.T) {
	s := NewScene(SceneOptions{Seed: 21, RoomWidth: 11, RoomDepth: 8})
	dur, err := s.AddGestureSender(GestureMessage{
		Bits:     []Bit{Bit0, Bit1},
		Distance: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(s, DeviceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := d.DecodeMessage(dur)
	if err != nil {
		t.Fatal(err)
	}
	if msg.String() != "01" {
		t.Fatalf("decoded %q (erasures %d, steps %d), want \"01\"",
			msg.String(), msg.Erasures, msg.Steps)
	}
	if len(msg.SNRsDB) != 2 || msg.SNRsDB[0] < 3 {
		t.Fatalf("SNRs = %v", msg.SNRsDB)
	}
}

func TestCounterTrainAndClassify(t *testing.T) {
	c, err := TrainCounter(map[int][]float64{
		0: {0, 1},
		1: {50, 60},
		2: {80, 90},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewScene(SceneOptions{Seed: 31})
	if err := s.AddWalker(5); err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(s, DeviceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Track(4)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Count(res); got < 0 || got > 2 {
		t.Fatalf("count = %d", got)
	}
	if _, err := TrainCounter(nil); err == nil {
		t.Fatal("empty training accepted")
	}
}
