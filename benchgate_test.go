package wivi_test

// Fixture tests for the shared CI bench-gate harness
// (scripts/bench-gate.sh + scripts/bench-gate.jq): the same invocation
// CI and `make bench-json` run is fed a known-good and a known-bad
// merged wivi-bench/1 report from testdata/benchgate/. A harness edit
// that silently stops rejecting bad reports — or starts rejecting good
// ones — fails here, so the gate set cannot rot invisibly the way the
// inlined jq asserts it replaced could. The harness needs a POSIX sh
// and jq; hosts without them skip (CI always has both).

import (
	"os/exec"
	"strings"
	"testing"
)

func runBenchGate(t *testing.T, fixture string) (string, error) {
	t.Helper()
	for _, tool := range []string{"sh", "jq"} {
		if _, err := exec.LookPath(tool); err != nil {
			t.Skipf("bench-gate harness needs %s: %v", tool, err)
		}
	}
	cmd := exec.Command("sh", "scripts/bench-gate.sh", fixture)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestBenchGateAcceptsGoodReport(t *testing.T) {
	out, err := runBenchGate(t, "testdata/benchgate/good.json")
	if err != nil {
		t.Fatalf("bench-gate rejected the known-good report: %v\n%s", err, out)
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("bench-gate printed a FAIL on the known-good report:\n%s", out)
	}
	// Every versioned gate must have actually run.
	for _, gate := range []string{"schema", "paced-slo", "stream-alloc",
		"warm-start", "serve-slo", "tenant-isolation"} {
		if !strings.Contains(out, "ok   "+gate) {
			t.Errorf("gate %q did not report ok on the good report:\n%s", gate, out)
		}
	}
}

func TestBenchGateRejectsBadReport(t *testing.T) {
	out, err := runBenchGate(t, "testdata/benchgate/bad.json")
	if err == nil {
		t.Fatalf("bench-gate accepted the known-bad report:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("bench-gate exit on bad report = %v, want exit status 1\n%s", err, out)
	}
	// The bad fixture violates every perf gate; each must be named.
	for _, gate := range []string{"paced-slo", "stream-alloc", "warm-start",
		"serve-slo", "tenant-isolation"} {
		if !strings.Contains(out, "FAIL "+gate) {
			t.Errorf("gate %q did not FAIL on the bad report:\n%s", gate, out)
		}
	}
	if !strings.Contains(out, "ok   schema") {
		t.Errorf("schema gate should still pass on the bad report:\n%s", out)
	}
}

func TestBenchGateUsageErrors(t *testing.T) {
	out, err := runBenchGate(t, "testdata/benchgate/absent.json")
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("bench-gate on a missing report = %v, want exit status 2\n%s", err, out)
	}
}
